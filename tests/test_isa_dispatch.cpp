// ISA-dispatch tests: the bit-exactness policy from
// kernels/kernel_dispatch.h pinned per tier. igemm is integer
// arithmetic end to end, so every runnable tier must produce output
// bit-identical to igemm_reference for every shape — including the
// degenerate and off-panel shapes that exercise zero-padded packing
// tails. sgemm tiers reorder FMA accumulation, so they agree with the
// naive reference only to tolerance, but a fixed tier must be
// bit-deterministic run to run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "kernels/cpu_features.h"
#include "kernels/fixedpoint.h"
#include "kernels/gemm.h"
#include "kernels/igemm.h"
#include "kernels/kernel_dispatch.h"
#include "runtime/check.h"
#include "runtime/rng.h"
#include "tensor/tensor_ops.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

// Restores the startup-resolved tier when a per-tier test ends, so
// test order never leaks a forced tier into later tests.
class TierGuard {
 public:
  TierGuard() : orig_(active_isa_tier()) {}
  ~TierGuard() { force_isa_tier(orig_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  IsaTier orig_;
};

TEST(IsaDispatch, TierNamesRoundTripThroughParse) {
  const IsaTier all[] = {IsaTier::kScalar, IsaTier::kAvx2, IsaTier::kAvx512,
                         IsaTier::kAvx512Vnni};
  for (const IsaTier t : all) {
    IsaTier parsed = IsaTier::kScalar;
    ASSERT_TRUE(parse_isa_tier(isa_tier_name(t), &parsed)) << isa_tier_name(t);
    EXPECT_EQ(parsed, t);
  }
  IsaTier sentinel = IsaTier::kAvx512Vnni;
  EXPECT_FALSE(parse_isa_tier("bogus", &sentinel));
  EXPECT_FALSE(parse_isa_tier("", &sentinel));
  EXPECT_FALSE(parse_isa_tier("AVX2", &sentinel));  // names are lowercase
  EXPECT_EQ(sentinel, IsaTier::kAvx512Vnni);        // untouched on failure
}

TEST(IsaDispatch, AvailableTiersAreAscendingAndContainScalarAndActive) {
  const std::vector<IsaTier> tiers = available_isa_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), IsaTier::kScalar);
  for (std::size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
  }
  const IsaTier active = active_isa_tier();
  EXPECT_NE(std::find(tiers.begin(), tiers.end(), active), tiers.end());
  EXPECT_EQ(kernel_dispatch().tier, active);
  EXPECT_STREQ(kernel_dispatch().igemm.name, isa_tier_name(active));
}

TEST(IsaDispatch, CpuFeatureSummaryListsEachDetectedFlag) {
  const CpuFeatures& f = cpu_features();
  const std::string s = cpu_features_summary();
  EXPECT_EQ(s.find("avx2") != std::string::npos, f.avx2);
  EXPECT_EQ(s.find("fma") != std::string::npos, f.fma);
  EXPECT_EQ(s.find("avx512f") != std::string::npos, f.avx512f);
  EXPECT_EQ(s.find("avx512bw") != std::string::npos, f.avx512bw);
  EXPECT_EQ(s.find("avx512vl") != std::string::npos, f.avx512vl);
  EXPECT_EQ(s.find("avx512vnni") != std::string::npos, f.avx512vnni);
}

TEST(IsaDispatch, ForceRejectsUnavailableTiersAndAcceptsAvailableOnes) {
  TierGuard guard;
  const std::vector<IsaTier> tiers = available_isa_tiers();
  for (const IsaTier t : tiers) {
    force_isa_tier(t);
    EXPECT_EQ(active_isa_tier(), t);
    // Variant tile shapes must fit the drivers' stack accumulators.
    const KernelDispatch& d = kernel_dispatch();
    EXPECT_LE(d.sgemm.mr, kMaxSgemmMr);
    EXPECT_LE(d.sgemm.nr, kMaxSgemmNr);
    EXPECT_LE(d.igemm.mr, kMaxIgemmMr);
    EXPECT_LE(d.igemm.nr, kMaxIgemmNr);
  }
  const IsaTier all[] = {IsaTier::kScalar, IsaTier::kAvx2, IsaTier::kAvx512,
                         IsaTier::kAvx512Vnni};
  for (const IsaTier t : all) {
    if (std::find(tiers.begin(), tiers.end(), t) == tiers.end()) {
      EXPECT_THROW(force_isa_tier(t), Error) << isa_tier_name(t);
    }
  }
}

// ---------------------------------------------------------------------------
// igemm: every tier bit-identical to igemm_reference.
// ---------------------------------------------------------------------------

std::vector<std::int8_t> random_int8(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<std::int8_t>(static_cast<std::int64_t>(rng.randint(256)) -
                                 128);
  }
  return v;
}

struct IgemmCase {
  std::int64_t m, n, k;
};

TEST(IsaDispatch, IgemmAllTiersBitIdenticalToReferenceAcrossFuzzShapes) {
  TierGuard guard;
  // Degenerate dims, odd K, widths just off the per-tier NR in
  // {16, 32} and MR=4 panels, and K straddling the kKc=512 block and
  // the k_unroll in {1, 2, 4} pad tails.
  const IgemmCase cases[] = {
      {1, 1, 1},    {1, 1, 7},     {1, 33, 513}, {4, 32, 8},  {5, 33, 7},
      {3, 31, 515}, {7, 1, 19},    {2, 130, 1},  {1, 64, 27}, {6, 96, 11},
      {4, 16, 514}, {12, 40, 129}, {33, 65, 17}, {9, 17, 63}, {8, 48, 256},
  };
  const std::vector<IsaTier> tiers = available_isa_tiers();
  int fuzz = 0;
  for (const IgemmCase& c : cases) {
    ++fuzz;
    // Over-wide leading dimensions so row strides are exercised too.
    const std::int64_t lda = c.k + (fuzz % 3);
    const std::int64_t ldb = c.n + (fuzz % 2) * 5;
    const std::int64_t ldo = c.n + (fuzz % 4);
    const auto a = random_int8(c.m * lda, 0xA0 + fuzz);
    const auto b = random_int8(c.k * ldb, 0xB0 + fuzz);

    Rng rng(0xC0 + fuzz);
    const auto b_zp =
        static_cast<std::int32_t>(static_cast<std::int64_t>(rng.randint(256)) -
                                  128);
    std::vector<std::int32_t> bias(static_cast<std::size_t>(c.m));
    std::vector<std::int32_t> multiplier(static_cast<std::size_t>(c.m));
    std::vector<int> shift(static_cast<std::size_t>(c.m));
    for (std::int64_t i = 0; i < c.m; ++i) {
      bias[i] = static_cast<std::int32_t>(rng.randint(1 << 20)) - (1 << 19);
      multiplier[i] =
          (1 << 30) + static_cast<std::int32_t>(rng.randint(1u << 30));
      shift[i] = -static_cast<int>(rng.randint(9));
    }
    IgemmEpilogue ep;
    ep.bias = bias.data();
    ep.multiplier = multiplier.data();
    ep.shift = shift.data();
    ep.out_zp = static_cast<std::int32_t>(rng.randint(17)) - 8;
    if (fuzz % 3 == 0) {  // occasionally a tight activation clamp
      ep.act_min = -20;
      ep.act_max = 40;
    }

    std::vector<std::int8_t> want(static_cast<std::size_t>(c.m * ldo), 99);
    igemm_reference(c.m, c.n, c.k, a.data(), lda, b.data(), ldb, b_zp, ep,
                    want.data(), ldo);
    for (const IsaTier t : tiers) {
      force_isa_tier(t);
      std::vector<std::int8_t> got(static_cast<std::size_t>(c.m * ldo), 99);
      igemm(c.m, c.n, c.k, a.data(), lda, b.data(), ldb, b_zp, ep, got.data(),
            ldo);
      // Compare only in-row elements: the ldo gutter is unspecified.
      for (std::int64_t i = 0; i < c.m; ++i) {
        ASSERT_EQ(0, std::memcmp(got.data() + i * ldo, want.data() + i * ldo,
                                 static_cast<std::size_t>(c.n)))
            << "tier " << isa_tier_name(t) << " shape " << c.m << "x" << c.n
            << "x" << c.k << " row " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// requant epilogue: every tier bit-identical to the scalar
// fixedpoint.h chain, including the SRDHM saturation and rounding
// edge cases and every SIMD tail length.
// ---------------------------------------------------------------------------

TEST(IsaDispatch, RequantAllTiersBitIdenticalToScalarAcrossFuzzInputs) {
  TierGuard guard;
  const std::vector<IsaTier> tiers = available_isa_tiers();
  // Lengths straddle the 8-lane (AVX2) and 16-lane (AVX-512) widths
  // plus every tail residue; 1 and 7 are pure-tail rows.
  const std::int64_t lens[] = {1, 7, 8, 9, 15, 16, 17, 31, 33, 64, 257};
  int fuzz = 0;
  for (const std::int64_t n : lens) {
    ++fuzz;
    Rng rng(0xE0 + fuzz);
    std::vector<std::int32_t> raw(static_cast<std::size_t>(n));
    for (auto& x : raw) {
      // |raw| <= 2^30, so base + raw stays inside int32 for the small
      // bases below (the scalar path adds them in 32-bit).
      x = static_cast<std::int32_t>(rng.randint(1u << 31)) - (1 << 30);
    }
    // Rounding-half boundaries and zero, placed at lane 0 and mid-lane.
    raw[0] = 1 << 29;
    if (n > 2) raw[2] = -(1 << 29);
    if (n > 5) raw[5] = 0;
    struct Cfg {
      std::int32_t base, mult;
      int shift;
    };
    const Cfg cfgs[] = {
        // Realistic TFLite range: mult in [2^30, 2^31), right shifts.
        {static_cast<std::int32_t>(rng.randint(1 << 20)) - (1 << 19),
         (1 << 30) + static_cast<std::int32_t>(rng.randint(1u << 30)),
         -static_cast<int>(rng.randint(9))},
        // Left shift branch (shift > 0) with 32-bit wraparound.
        {0, (1 << 30) + 12345, 4},
        // Deep right shift: exponent 30 is the largest UB-free one.
        {7, std::numeric_limits<std::int32_t>::max(), -30},
        // Negative multiplier flips every product's sign/nudge path.
        {-3, -(1 << 30) - 999, -5},
        // SRDHM saturation arm: INT32_MIN * INT32_MIN -> INT32_MAX
        // (raw[0] is overwritten below for this case).
        {0, std::numeric_limits<std::int32_t>::min(), -2},
    };
    int ci = 0;
    for (const Cfg& cfg : cfgs) {
      ++ci;
      std::vector<std::int32_t> vals = raw;
      if (cfg.mult == std::numeric_limits<std::int32_t>::min()) {
        vals[0] = std::numeric_limits<std::int32_t>::min();
      }
      const std::int32_t out_zp =
          static_cast<std::int32_t>(rng.randint(17)) - 8;
      const std::int32_t act_min = ci % 2 == 0 ? -20 : -128;
      const std::int32_t act_max = ci % 2 == 0 ? 40 : 127;
      std::vector<std::int8_t> want(static_cast<std::size_t>(n));
      for (std::int64_t j = 0; j < n; ++j) {
        const std::int32_t scaled = multiply_by_quantized_multiplier(
            cfg.base + vals[static_cast<std::size_t>(j)], cfg.mult,
            cfg.shift);
        want[static_cast<std::size_t>(j)] = static_cast<std::int8_t>(
            std::clamp(scaled + out_zp, act_min, act_max));
      }
      for (const IsaTier t : tiers) {
        force_isa_tier(t);
        std::vector<std::int8_t> got(static_cast<std::size_t>(n), 99);
        kernel_dispatch().requant.row(vals.data(), n, cfg.base, cfg.mult,
                                      cfg.shift, out_zp, act_min, act_max,
                                      got.data());
        ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                                 static_cast<std::size_t>(n)))
            << "tier " << isa_tier_name(t) << " ("
            << kernel_dispatch().requant.name << ") n=" << n
            << " cfg=" << ci;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// sgemm: tolerance parity across tiers, bit-determinism within a tier.
// ---------------------------------------------------------------------------

TEST(IsaDispatch, SgemmTiersMatchReferenceToToleranceAndAreDeterministic) {
  TierGuard guard;
  const std::int64_t shapes[][3] = {
      {1, 1, 5}, {5, 33, 7}, {33, 65, 17}, {64, 64, 288}, {70, 130, 260},
  };
  const std::vector<IsaTier> tiers = available_isa_tiers();
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    const Tensor a = random_tensor(Shape{m, k}, 31 * m + n);
    const Tensor b = random_tensor(Shape{k, n}, 37 * n + k);
    const Tensor want = matmul_reference(a, b);
    for (const IsaTier t : tiers) {
      force_isa_tier(t);
      Tensor got(Shape{m, n});
      sgemm(m, n, k, a.raw(), k, false, b.raw(), n, false, got.raw(), n, {});
      for (std::int64_t i = 0; i < got.numel(); ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-4f)
            << "tier " << isa_tier_name(t) << " flat index " << i;
      }
      // Same tier, same inputs: bit-identical (per-tier determinism).
      Tensor again(Shape{m, n});
      sgemm(m, n, k, a.raw(), k, false, b.raw(), n, false, again.raw(), n,
            {});
      ASSERT_EQ(0, std::memcmp(got.raw(), again.raw(),
                               static_cast<std::size_t>(got.numel()) *
                                   sizeof(float)))
          << "tier " << isa_tier_name(t) << " not deterministic";
    }
  }
}

}  // namespace
}  // namespace diva
