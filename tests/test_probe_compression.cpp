// Unit tests for the probe-compression primitives behind the
// compressed SPSA estimators: subspace lift/project round-trips,
// orthonormality of both basis kinds, the Gram-trick PCA fit, and the
// sign-sparse probe encode/decode + sampling determinism that the
// attack-level bit-identity tests in test_attack_api.cpp build on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "attack/probe_compression.h"
#include "metrics/pca.h"
#include "runtime/check.h"
#include "runtime/rng.h"
#include "tensor/tensor.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

double dot(const float* a, const float* b, std::int64_t n) {
  double s = 0.0;
  for (std::int64_t i = 0; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

// ---------------------------------------------------------------------------
// Random orthonormal subspaces.
// ---------------------------------------------------------------------------

TEST(ProbeSubspace, RandomBasisRowsAreOrthonormal) {
  const auto sub = make_random_subspace(/*image_dim=*/48, /*k=*/12, 0xFEED);
  ASSERT_EQ(sub->dim(), 12);
  ASSERT_EQ(sub->image_dim(), 48);
  EXPECT_EQ(sub->kind(), "rand");
  const Tensor& b = sub->basis();
  for (std::int64_t r = 0; r < sub->dim(); ++r) {
    for (std::int64_t s = r; s < sub->dim(); ++s) {
      const double d = dot(b.raw() + r * 48, b.raw() + s * 48, 48);
      EXPECT_NEAR(d, r == s ? 1.0 : 0.0, 1e-4)
          << "rows " << r << "," << s;
    }
  }
}

TEST(ProbeSubspace, RandomBasisIsDeterministicInSeedOnly) {
  const auto a = make_random_subspace(32, 8, 7);
  const auto b = make_random_subspace(32, 8, 7);
  const auto c = make_random_subspace(32, 8, 8);
  ASSERT_EQ(a->basis().numel(), b->basis().numel());
  float max_diff = 0.0f, seed_diff = 0.0f;
  for (std::int64_t i = 0; i < a->basis().numel(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(a->basis()[i] - b->basis()[i]));
    seed_diff = std::max(seed_diff,
                         std::abs(a->basis()[i] - c->basis()[i]));
  }
  EXPECT_EQ(max_diff, 0.0f);
  EXPECT_GT(seed_diff, 0.0f);
}

TEST(ProbeSubspace, LiftProjectRoundTripsCoefficients) {
  // project(lift(c)) == c for orthonormal rows (up to float rounding):
  // the k coefficients survive the trip through D-dimensional image
  // space, which is what lets the estimator accumulate per-coefficient.
  const auto sub = make_random_subspace(60, 10, 0xABCD);
  Rng rng(3);
  std::vector<float> coeffs(10);
  for (auto& c : coeffs) c = rng.uniform(-2.0f, 2.0f);
  const std::vector<float> image = sub->lift(coeffs);
  ASSERT_EQ(image.size(), 60u);
  const std::vector<float> back = sub->project(image.data());
  ASSERT_EQ(back.size(), 10u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], coeffs[i], 1e-4f) << "coefficient " << i;
  }
}

TEST(ProbeSubspace, BasisShapeIsValidated) {
  EXPECT_THROW(ProbeSubspace(Tensor(Shape{4}), "rand"), Error);
  EXPECT_THROW(make_random_subspace(8, 0, 1), Error);
  EXPECT_THROW(make_random_subspace(8, 9, 1), Error);
}

// ---------------------------------------------------------------------------
// PCA bases (Gram-trick fit) over image batches.
// ---------------------------------------------------------------------------

TEST(ProbeSubspace, GramFitMatchesCovarianceFitOnSmallData) {
  // N > D so both solvers apply: the Gram/snapshot eigensolve must
  // reproduce the covariance-side fit — same spectrum, same axes up to
  // per-component sign.
  const Tensor x = random_tensor(Shape{12, 5}, 99);
  const PcaResult cov = pca_fit(x, 4);
  const PcaResult gram = pca_fit_gram(x, 4);
  ASSERT_EQ(gram.components.dim(0), 4);
  ASSERT_EQ(gram.components.dim(1), 5);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(gram.explained_variance[c], cov.explained_variance[c],
                1e-3f * (1.0f + cov.explained_variance[c]))
        << "component " << c;
    const double d =
        dot(gram.components.raw() + c * 5, cov.components.raw() + c * 5, 5);
    EXPECT_NEAR(std::abs(d), 1.0, 1e-3) << "component " << c;
  }
}

TEST(ProbeSubspace, PcaSubspaceFromImagesIsOrthonormalAndClamped) {
  // NCHW batch with N - 1 < D: the snapshot path. k clamps to N - 1.
  const Tensor images = random_tensor(Shape{9, 1, 4, 6}, 21);
  const auto sub = make_pca_subspace(images, /*k=*/16);
  EXPECT_EQ(sub->kind(), "pca");
  EXPECT_EQ(sub->image_dim(), 24);
  EXPECT_EQ(sub->dim(), 8);  // min(16, N - 1 = 8, D = 24)
  const Tensor& b = sub->basis();
  for (std::int64_t r = 0; r < sub->dim(); ++r) {
    for (std::int64_t s = r; s < sub->dim(); ++s) {
      EXPECT_NEAR(dot(b.raw() + r * 24, b.raw() + s * 24, 24),
                  r == s ? 1.0 : 0.0, 1e-3)
          << "rows " << r << "," << s;
    }
  }
}

TEST(ProbeSubspace, PcaInverseTransformReconstructsProjection) {
  const Tensor x = random_tensor(Shape{10, 6}, 5);
  const PcaResult pca = pca_fit(x, 6);  // full rank: lossless
  const Tensor coeffs = pca_transform(pca, x);
  const Tensor back = pca_inverse_transform(pca, coeffs);
  ASSERT_EQ(back.shape(), x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-3f) << "flat index " << i;
  }
}

// ---------------------------------------------------------------------------
// Sign-sparse probes.
// ---------------------------------------------------------------------------

TEST(SparseProbe, SampleProducesExactSupportSizeAscendingAndDistinct) {
  Rng rng(0x5EED);
  for (const std::int64_t nnz : {1, 3, 7, 16}) {
    const SparseProbe p = sample_sparse_probe(rng, /*dim=*/32, nnz);
    EXPECT_EQ(p.dim, 32);
    ASSERT_EQ(p.nnz(), nnz);
    std::set<std::int32_t> seen;
    for (std::int64_t t = 0; t < p.nnz(); ++t) {
      const std::int32_t idx = p.index[static_cast<std::size_t>(t)];
      EXPECT_GE(idx, 0);
      EXPECT_LT(idx, 32);
      if (t > 0) {
        EXPECT_LT(p.index[static_cast<std::size_t>(t - 1)], idx);
      }
      seen.insert(idx);
      EXPECT_NE(p.sign(static_cast<std::size_t>(t)), 0.0f);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(nnz));
  }
}

TEST(SparseProbe, DenseSampleConsumesTheLegacyBernoulliStream) {
  // nnz == dim must replay the historical dense SPSA draw: one
  // bernoulli per coordinate, ascending — this is what keeps the
  // default estimator bit-identical to the pre-compression one.
  Rng a(42), b(42);
  const SparseProbe p = sample_sparse_probe(a, 24, 24);
  ASSERT_EQ(p.nnz(), 24);
  for (std::int64_t i = 0; i < 24; ++i) {
    EXPECT_EQ(p.index[static_cast<std::size_t>(i)], i);
    const float legacy = b.bernoulli(0.5) ? 1.0f : -1.0f;
    EXPECT_EQ(p.sign(static_cast<std::size_t>(i)), legacy)
        << "coordinate " << i;
  }
  // And the generators end in the same state.
  EXPECT_EQ(a.randint(1u << 30), b.randint(1u << 30));
}

TEST(SparseProbe, SamplingIsDeterministicInTheRngStream) {
  Rng a(7), b(7);
  for (int rep = 0; rep < 5; ++rep) {
    const SparseProbe pa = sample_sparse_probe(a, 40, 10);
    const SparseProbe pb = sample_sparse_probe(b, 40, 10);
    EXPECT_EQ(pa.index, pb.index) << "rep " << rep;
    EXPECT_EQ(pa.signbits, pb.signbits) << "rep " << rep;
  }
}

TEST(SparseProbe, EncodeDecodeRoundTripsEveryDenseSignVector) {
  Rng rng(11);
  for (int rep = 0; rep < 8; ++rep) {
    const std::int64_t dim = 5 + 9 * rep;
    std::vector<float> dense(static_cast<std::size_t>(dim), 0.0f);
    for (auto& v : dense) {
      const auto r = rng.randint(3);
      v = r == 0 ? 0.0f : (r == 1 ? 1.0f : -1.0f);
    }
    const SparseProbe p = encode_sparse_probe(dense.data(), dim);
    EXPECT_EQ(p.dim, dim);
    const std::vector<float> back = decode_sparse_probe(p);
    EXPECT_EQ(back, dense) << "rep " << rep;
  }
}

TEST(SparseProbe, DecodedSampleHasUnitEntriesExactlyOnSupport) {
  Rng rng(13);
  const SparseProbe p = sample_sparse_probe(rng, 50, 12);
  const std::vector<float> dense = decode_sparse_probe(p);
  ASSERT_EQ(dense.size(), 50u);
  std::int64_t nonzero = 0;
  for (const float v : dense) {
    if (v != 0.0f) {
      ++nonzero;
      EXPECT_EQ(std::abs(v), 1.0f);
    }
  }
  EXPECT_EQ(nonzero, 12);
  // Round-trip back through encode preserves support and signs.
  const SparseProbe again = encode_sparse_probe(dense.data(), 50);
  EXPECT_EQ(again.index, p.index);
  EXPECT_EQ(again.signbits, p.signbits);
}

}  // namespace
}  // namespace diva
