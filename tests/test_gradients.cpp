// Numerical gradient checks for every layer and composite.
// These are the load-bearing tests: every attack in this library depends
// on correct input gradients, and every training loop on parameter
// gradients.
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/init.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "quant/qat_layers.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::check_gradients;
using testing::random_tensor;

TEST(Gradients, Conv2dBasic) {
  Conv2d conv("c", 2, 3, 3, 1, 1);
  init_parameters(conv, 1);
  check_gradients(conv, random_tensor(Shape{2, 2, 5, 5}, 2), 3);
}

TEST(Gradients, Conv2dStridedNoPad) {
  Conv2d conv("c", 3, 4, 3, 2, 0);
  init_parameters(conv, 4);
  check_gradients(conv, random_tensor(Shape{2, 3, 7, 7}, 5), 6);
}

TEST(Gradients, Conv2dOneByOne) {
  Conv2d conv("c", 4, 2, 1, 1, 0);
  init_parameters(conv, 7);
  check_gradients(conv, random_tensor(Shape{1, 4, 4, 4}, 8), 9);
}

TEST(Gradients, Conv2dNoBias) {
  Conv2d conv("c", 2, 2, 3, 1, 1, /*with_bias=*/false);
  init_parameters(conv, 10);
  check_gradients(conv, random_tensor(Shape{1, 2, 4, 4}, 11), 12);
}

TEST(Gradients, DepthwiseConv2d) {
  DepthwiseConv2d conv("dw", 3, 3, 1, 1);
  init_parameters(conv, 13);
  check_gradients(conv, random_tensor(Shape{2, 3, 5, 5}, 14), 15);
}

TEST(Gradients, DepthwiseConv2dStrided) {
  DepthwiseConv2d conv("dw", 4, 3, 2, 1);
  init_parameters(conv, 16);
  check_gradients(conv, random_tensor(Shape{1, 4, 6, 6}, 17), 18);
}

TEST(Gradients, Dense) {
  Dense fc("fc", 6, 4);
  init_parameters(fc, 19);
  check_gradients(fc, random_tensor(Shape{3, 6}, 20), 21);
}

TEST(Gradients, BatchNormTrainingMode) {
  BatchNorm2d bn("bn", 3);
  Rng rng(22);
  bn.gamma().value.fill_uniform(rng, 0.5f, 1.5f);
  bn.beta().value.fill_uniform(rng, -0.5f, 0.5f);
  // Larger tolerances: finite differencing perturbs batch statistics.
  check_gradients(bn, random_tensor(Shape{3, 3, 4, 4}, 23), 24, 2e-4f, 8e-2f,
                  5e-3f);
}

TEST(Gradients, BatchNormEvalMode) {
  BatchNorm2d bn("bn", 2);
  Rng rng(25);
  bn.gamma().value.fill_uniform(rng, 0.5f, 1.5f);
  bn.running_mean().value.fill_uniform(rng, -0.3f, 0.3f);
  bn.running_var().value.fill_uniform(rng, 0.5f, 1.5f);

  // Eval-mode input gradient: BN is a per-channel affine transform.
  bn.set_training(false);
  Tensor x = random_tensor(Shape{2, 2, 3, 3}, 26);
  (void)bn.forward(x);
  Tensor probe = random_tensor(Shape{2, 2, 3, 3}, 27);
  bn.zero_grad();
  Tensor dx = bn.backward(probe);
  for (std::int64_t c = 0; c < 2; ++c) {
    const float k = bn.gamma().value[c] /
                    std::sqrt(bn.running_var().value[c] + bn.eps());
    for (std::int64_t n = 0; n < 2; ++n) {
      for (std::int64_t i = 0; i < 9; ++i) {
        const std::int64_t idx = (n * 2 + c) * 9 + i;
        EXPECT_NEAR(dx[idx], probe[idx] * k, 1e-5f);
      }
    }
  }
}

TEST(Gradients, ReluFamily) {
  Relu relu("r");
  check_gradients(relu, random_tensor(Shape{2, 3, 4, 4}, 28), 29);
  Relu6 relu6("r6");
  check_gradients(relu6, random_tensor(Shape{2, 8}, 30, -8.0f, 8.0f), 31);
  LeakyRelu lrelu("lr", 0.1f);
  check_gradients(lrelu, random_tensor(Shape{2, 6}, 32), 33);
}

TEST(Gradients, MaxPool) {
  MaxPool2d pool("p", 2);
  check_gradients(pool, random_tensor(Shape{2, 2, 6, 6}, 34), 35);
}

TEST(Gradients, MaxPoolOverlapping) {
  MaxPool2d pool("p", 3, 2, 1);
  check_gradients(pool, random_tensor(Shape{1, 2, 7, 7}, 36), 37);
}

TEST(Gradients, AvgPool) {
  AvgPool2d pool("p", 2);
  check_gradients(pool, random_tensor(Shape{2, 3, 6, 6}, 38), 39);
}

TEST(Gradients, GlobalAvgPool) {
  GlobalAvgPool pool("gap");
  check_gradients(pool, random_tensor(Shape{2, 4, 3, 3}, 40), 41);
}

TEST(Gradients, Flatten) {
  Flatten f("f");
  check_gradients(f, random_tensor(Shape{2, 2, 3, 3}, 42), 43);
}

TEST(Gradients, SequentialChain) {
  Sequential seq("seq");
  seq.emplace<Conv2d>("c1", 2, 4, 3, 1, 1);
  seq.emplace<Relu>("r1");
  seq.emplace<MaxPool2d>("p1", 2);
  seq.emplace<Flatten>("f");
  seq.emplace<Dense>("fc", 4 * 3 * 3, 5);
  init_parameters(seq, 44);
  check_gradients(seq, random_tensor(Shape{2, 2, 6, 6}, 45), 46);
}

TEST(Gradients, ResidualIdentityShortcut) {
  auto main = std::make_unique<Sequential>("main");
  main->emplace<Conv2d>("c1", 3, 3, 3, 1, 1);
  main->emplace<Relu>("r");
  main->emplace<Conv2d>("c2", 3, 3, 3, 1, 1);
  Residual res("res", std::move(main));
  init_parameters(res, 47);
  check_gradients(res, random_tensor(Shape{2, 3, 5, 5}, 48), 49);
}

TEST(Gradients, ResidualProjectionShortcut) {
  auto main = std::make_unique<Sequential>("main");
  main->emplace<Conv2d>("c1", 2, 4, 3, 2, 1);
  auto shortcut = std::make_unique<Sequential>("shortcut");
  shortcut->emplace<Conv2d>("proj", 2, 4, 1, 2, 0);
  Residual res("res", std::move(main), std::move(shortcut));
  init_parameters(res, 50);
  check_gradients(res, random_tensor(Shape{2, 2, 6, 6}, 51), 52);
}

TEST(Gradients, DenseBranchConcat) {
  auto body = std::make_unique<Sequential>("body");
  body->emplace<Conv2d>("grow", 3, 2, 3, 1, 1);
  body->emplace<Relu>("r");
  DenseBranch db("db", std::move(body));
  init_parameters(db, 53);
  check_gradients(db, random_tensor(Shape{2, 3, 4, 4}, 54), 55);
}

TEST(Gradients, QatConvStraightThrough) {
  // QAT conv: gradients flow to master weights via STE; the input
  // gradient uses the quantized weights, so finite differences (which
  // rarely cross a quantization boundary at eps=1e-3) match.
  QatConv2d conv("qc", 2, 3, 3, 1, 1);
  init_parameters(conv, 56);
  Tensor x = random_tensor(Shape{1, 2, 4, 4}, 57);
  conv.set_training(true);
  Tensor out = conv.forward(x);
  Tensor probe = random_tensor(out.shape(), 58);
  conv.zero_grad();
  Tensor dx = conv.backward(probe);

  // Input gradient vs finite differences.
  for (std::int64_t i = 0; i < x.numel(); i += 5) {
    const float orig = x[i];
    const float eps = 1e-3f;
    x[i] = orig + eps;
    const float lp = testing::probe_loss(conv.forward(x), probe);
    x[i] = orig - eps;
    const float lm = testing::probe_loss(conv.forward(x), probe);
    x[i] = orig;
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * eps), 5e-2f + 5e-2f * std::fabs(dx[i]));
  }
  // STE: master weight gradient is nonzero.
  float gsum = 0.0f;
  for (std::int64_t i = 0; i < conv.weight().grad.numel(); ++i) {
    gsum += std::fabs(conv.weight().grad[i]);
  }
  EXPECT_GT(gsum, 0.0f);
}

TEST(Gradients, EvalModeBackwardThroughWholeNetwork) {
  // Attacks differentiate eval-mode networks w.r.t. the input.
  Sequential seq("net");
  seq.emplace<Conv2d>("c1", 1, 4, 3, 1, 1);
  seq.emplace<BatchNorm2d>("bn", 4);
  seq.emplace<Relu>("r");
  seq.emplace<GlobalAvgPool>("gap");
  seq.emplace<Dense>("fc", 4, 3);
  init_parameters(seq, 59);
  // Populate running stats with one training pass.
  seq.set_training(true);
  (void)seq.forward(random_tensor(Shape{8, 1, 6, 6}, 60));
  seq.set_training(false);

  Tensor x = random_tensor(Shape{2, 1, 6, 6}, 61);
  Tensor out = seq.forward(x);
  Tensor probe = random_tensor(out.shape(), 62);
  seq.zero_grad();
  Tensor dx = seq.backward(probe);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); i += 7) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = testing::probe_loss(seq.forward(x), probe);
    x[i] = orig - eps;
    const float lm = testing::probe_loss(seq.forward(x), probe);
    x[i] = orig;
    const float num = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx[i], num, 1e-3f + 5e-2f * std::fabs(num));
  }
}

}  // namespace
}  // namespace diva
