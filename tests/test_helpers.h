// Shared helpers for the test suite: numerical gradient checking and
// small utilities.
#pragma once

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/module.h"
#include "tensor/tensor_ops.h"

namespace diva::testing {

/// Scalar loss used for gradient checks: sum(output * probe) with a
/// fixed random probe tensor, whose gradient w.r.t. output is probe.
inline float probe_loss(const Tensor& out, const Tensor& probe) {
  return sum(mul(out, probe));
}

/// Checks d(probe_loss)/d(input) of a module against central finite
/// differences. Also verifies accumulated parameter gradients.
// eps is small (2e-4) so finite differences rarely straddle a ReLU kink
// (kink crossings bias the FD estimate by O(unit contribution)); float32
// forward noise stays ~two orders below the difference signal.
inline void check_gradients(Module& m, Tensor x, std::uint64_t seed,
                            float eps = 2e-4f, float rtol = 6e-2f,
                            float atol = 2e-3f) {
  Rng rng(seed);
  m.set_training(true);

  Tensor out = m.forward(x);
  Tensor probe(out.shape());
  probe.fill_uniform(rng, -1.0f, 1.0f);

  m.zero_grad();
  Tensor dx = m.backward(probe);
  ASSERT_EQ(dx.shape().str(), x.shape().str());

  // Snapshot analytic parameter gradients.
  auto params = m.named_parameters();
  std::vector<Tensor> param_grads;
  for (auto& np : params) param_grads.push_back(np.param->grad);

  auto loss_at = [&](void) -> float {
    // Forward in training mode can mutate running stats (BatchNorm);
    // tolerable for finite differencing because updates are symmetric
    // to first order, but prefer fresh stats: tests with BN pass their
    // own tolerances.
    return probe_loss(m.forward(x), probe);
  };

  // Input gradient check on a subsample of coordinates.
  const std::int64_t n = x.numel();
  const std::int64_t step = std::max<std::int64_t>(1, n / 24);
  for (std::int64_t i = 0; i < n; i += step) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = loss_at();
    x[i] = orig - eps;
    const float lm = loss_at();
    x[i] = orig;
    const float num = (lp - lm) / (2 * eps);
    const float ana = dx[i];
    const float tol = atol + rtol * std::fabs(num);
    EXPECT_NEAR(ana, num, tol) << "input grad mismatch at flat index " << i;
  }

  // Parameter gradient check (subsample).
  for (std::size_t p = 0; p < params.size(); ++p) {
    if (!params[p].param->trainable) continue;
    Tensor& w = params[p].param->value;
    const std::int64_t wn = w.numel();
    const std::int64_t wstep = std::max<std::int64_t>(1, wn / 12);
    for (std::int64_t i = 0; i < wn; i += wstep) {
      const float orig = w[i];
      w[i] = orig + eps;
      const float lp = loss_at();
      w[i] = orig - eps;
      const float lm = loss_at();
      w[i] = orig;
      const float num = (lp - lm) / (2 * eps);
      const float ana = param_grads[p][i];
      const float tol = atol + rtol * std::fabs(num);
      EXPECT_NEAR(ana, num, tol)
          << "param grad mismatch in " << params[p].name << " at " << i;
    }
  }
}

/// Random NCHW tensor.
inline Tensor random_tensor(const Shape& shape, std::uint64_t seed,
                            float lo = -1.0f, float hi = 1.0f) {
  Tensor t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, lo, hi);
  return t;
}

}  // namespace diva::testing
