// Dataset generator and loader tests: determinism, value ranges, label
// structure, split disjointness, batching.
#include <gtest/gtest.h>

#include "data/synth_digits.h"
#include "data/synth_faces.h"
#include "data/synth_imagenet.h"
#include "tensor/tensor_ops.h"

namespace diva {
namespace {

template <typename Gen>
void expect_deterministic(const Gen& g1, const Gen& g2) {
  const Tensor a = g1.render(1, 5);
  const Tensor b = g2.render(1, 5);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(SynthImageNet, DeterministicInSeedClassIndex) {
  expect_deterministic(SynthImageNet(16, 7), SynthImageNet(16, 7));
  // Different seed, class or index changes the image.
  const SynthImageNet g(16, 7);
  const Tensor base = g.render(1, 5);
  EXPECT_GT(max_abs(sub(base, SynthImageNet(16, 8).render(1, 5))), 0.0f);
  EXPECT_GT(max_abs(sub(base, g.render(2, 5))), 0.0f);
  EXPECT_GT(max_abs(sub(base, g.render(1, 6))), 0.0f);
}

TEST(SynthImageNet, PixelRangeAndShape) {
  const SynthImageNet g(16, 1);
  for (int cls : {0, 7, 15}) {
    const Tensor img = g.render(cls, 0);
    EXPECT_EQ(img.shape(), (Shape{3, 32, 32}));
    EXPECT_GE(min_value(img), 0.0f);
    EXPECT_LE(max_value(img), 1.0f);
  }
}

TEST(SynthImageNet, GenerateLayoutAndLabels) {
  const SynthImageNet g(4, 2);
  const Dataset d = g.generate(3, 100);
  EXPECT_EQ(d.size(), 12);
  EXPECT_EQ(d.num_classes, 4);
  for (int cls = 0; cls < 4; ++cls) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(d.labels[static_cast<std::size_t>(cls * 3 + i)], cls);
    }
  }
  // Row 0 must equal render(0, 100) — offset respected.
  const Tensor img = g.render(0, 100);
  for (std::int64_t i = 0; i < img.numel(); ++i) {
    EXPECT_EQ(d.images[i], img[i]);
  }
}

TEST(SynthImageNet, DisjointIndexRangesGiveDisjointImages) {
  const SynthImageNet g(4, 3);
  const Dataset train = g.generate(5, 0);
  const Dataset val = g.generate(5, 100000);
  // No image in val matches any image in train exactly.
  const std::int64_t per = 3 * 32 * 32;
  for (std::int64_t i = 0; i < val.size(); ++i) {
    for (std::int64_t j = 0; j < train.size(); ++j) {
      bool same = true;
      for (std::int64_t k = 0; k < per && same; ++k) {
        same = val.images[i * per + k] == train.images[j * per + k];
      }
      EXPECT_FALSE(same) << "val " << i << " == train " << j;
    }
  }
}

TEST(SynthImageNet, IntraFamilyClassesAreVisuallyCloserThanInterFamily) {
  // Mean pixel distance between class prototypes: same-family variants
  // (0 and 1) should be closer than cross-family classes (0 and 4).
  const SynthImageNet g(16, 11);
  auto mean_image = [&](int cls) {
    Tensor acc(Shape{3, 32, 32});
    for (int i = 0; i < 20; ++i) accumulate(acc, g.render(cls, i));
    return mul_scalar(acc, 1.0f / 20.0f);
  };
  const Tensor c0 = mean_image(0), c1 = mean_image(1), c4 = mean_image(4);
  const float intra = mean(abs(sub(c0, c1)));
  const float inter = mean(abs(sub(c0, c4)));
  EXPECT_LT(intra, inter);
}

TEST(SynthDigits, DeterministicRangeAndDistinctDigits) {
  expect_deterministic(SynthDigits(3), SynthDigits(3));
  const SynthDigits g(3);
  const Tensor d1 = g.render(1, 0);
  const Tensor d8 = g.render(8, 0);
  EXPECT_EQ(d1.shape(), (Shape{1, 28, 28}));
  EXPECT_GE(min_value(d1), 0.0f);
  EXPECT_LE(max_value(d1), 1.0f);
  // Digit 8 lights every segment; digit 1 only two -> more ink.
  EXPECT_GT(sum(d8), sum(d1) * 1.5f);
}

TEST(SynthFaces, DeterministicAndIdentityStructure) {
  expect_deterministic(SynthFaces(30, 5), SynthFaces(30, 5));
  const SynthFaces g(30, 5);
  // Two instances of one identity are closer than two identities.
  const Tensor a0 = g.render(3, 0);
  const Tensor a1 = g.render(3, 1);
  const Tensor b0 = g.render(17, 0);
  EXPECT_LT(mean(abs(sub(a0, a1))), mean(abs(sub(a0, b0))));
}

TEST(Dataset, SubsetCopiesSelectedRows) {
  const SynthDigits g(1);
  const Dataset d = g.generate(2, 0);  // 20 images
  const Dataset s = d.subset({3, 7, 19});
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.labels[0], d.labels[3]);
  EXPECT_EQ(s.labels[2], d.labels[19]);
  const std::int64_t per = 28 * 28;
  for (std::int64_t k = 0; k < per; ++k) {
    EXPECT_EQ(s.images[k], d.images[3 * per + k]);
  }
}

TEST(DataLoader, CoversEverySampleOncePerEpoch) {
  const SynthDigits g(2);
  const Dataset d = g.generate(3, 0);  // 30 samples
  DataLoader loader(d, 7, 123);
  std::vector<int> label_counts(10, 0);
  std::int64_t seen = 0;
  while (seen < d.size()) {
    const Batch b = loader.next();
    seen += b.images.dim(0);
    for (int y : b.labels) label_counts[static_cast<std::size_t>(y)]++;
  }
  EXPECT_EQ(seen, 30);
  for (int c : label_counts) EXPECT_EQ(c, 3);
}

TEST(DataLoader, ReshufflesBetweenEpochs) {
  const SynthDigits g(2);
  const Dataset d = g.generate(10, 0);
  DataLoader loader(d, 100, 42);
  const Batch e1 = loader.next();
  const Batch e2 = loader.next();
  EXPECT_NE(e1.labels, e2.labels);
}

TEST(DataLoader, RejectsBadBatchSize) {
  const SynthDigits g(2);
  const Dataset d = g.generate(1, 0);
  EXPECT_THROW(DataLoader(d, 0, 1), Error);
}

}  // namespace
}  // namespace diva
