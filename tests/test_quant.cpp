// Quantization stack tests: qparams math, fake-quant, fixed-point
// requantization, int8 kernels, and QAT layers.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/fake_quant.h"
#include "quant/int8_kernels.h"
#include "quant/qat_layers.h"
#include "nn/init.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

TEST(QParams, ChooseQParamsIncludesZeroAndCoversRange) {
  const QuantParams qp = choose_qparams(-1.0f, 3.0f);
  EXPECT_NEAR(qp.scale, 4.0f / 255.0f, 1e-6f);
  // Real zero must be exactly representable.
  EXPECT_NEAR(qp.dequantize(static_cast<std::int8_t>(qp.zero_point)), 0.0f,
              1e-9f);
  // Range endpoints map near the int8 extremes.
  EXPECT_LE(std::abs(static_cast<int>(qp.quantize(-1.0f)) - kQmin), 1);
  EXPECT_LE(std::abs(static_cast<int>(qp.quantize(3.0f)) - kQmax), 1);
}

TEST(QParams, PositiveOnlyRangeGetsZeroPointAtQmin) {
  const QuantParams qp = choose_qparams(0.0f, 6.0f);
  EXPECT_EQ(qp.zero_point, kQmin);
  EXPECT_EQ(qp.quantize(0.0f), kQmin);
}

TEST(QParams, DegenerateRange) {
  const QuantParams qp = choose_qparams(0.0f, 0.0f);
  EXPECT_EQ(qp.scale, 1.0f);
  EXPECT_EQ(qp.zero_point, 0);
}

TEST(QParams, QuantizeDequantizeErrorBoundedByHalfScale) {
  const QuantParams qp = choose_qparams(-2.0f, 2.0f);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float x = rng.uniform(-2.0f, 2.0f);
    const float xr = qp.dequantize(qp.quantize(x));
    EXPECT_LE(std::fabs(x - xr), qp.scale * 0.5f + 1e-6f);
  }
}

TEST(QParams, PerChannelScalesMatchMaxAbs) {
  Tensor w(Shape{2, 3});
  w.at(0, 0) = -0.5f; w.at(0, 1) = 0.25f; w.at(0, 2) = 0.1f;
  w.at(1, 0) = 2.0f;  w.at(1, 1) = -1.0f; w.at(1, 2) = 0.0f;
  const auto scales = per_channel_scales(w);
  EXPECT_NEAR(scales[0], 0.5f / 127.0f, 1e-7f);
  EXPECT_NEAR(scales[1], 2.0f / 127.0f, 1e-7f);
}

TEST(QParams, QuantizePerChannelRoundTripBound) {
  const Tensor w = random_tensor(Shape{4, 10}, 2);
  const auto scales = per_channel_scales(w);
  const auto q = quantize_per_channel(w, scales);
  for (std::int64_t c = 0; c < 4; ++c) {
    for (std::int64_t i = 0; i < 10; ++i) {
      const float back = q[static_cast<std::size_t>(c * 10 + i)] *
                         scales[static_cast<std::size_t>(c)];
      EXPECT_LE(std::fabs(back - w.at(c, i)),
                scales[static_cast<std::size_t>(c)] * 0.5f + 1e-6f);
    }
  }
}

TEST(FixedPoint, QuantizeMultiplierReconstructs) {
  for (const double m : {0.0001, 0.37, 0.5, 0.9999, 1.0, 1.7, 42.5}) {
    std::int32_t mult = 0;
    int shift = 0;
    quantize_multiplier(m, &mult, &shift);
    const double back =
        static_cast<double>(mult) / (1LL << 31) * std::pow(2.0, shift);
    EXPECT_NEAR(back / m, 1.0, 1e-6) << "m=" << m;
  }
}

TEST(FixedPoint, MultiplyByQuantizedMultiplierMatchesRealArithmetic) {
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const double m = std::exp(rng.uniform(-6.0f, 1.0f));
    std::int32_t mult = 0;
    int shift = 0;
    quantize_multiplier(m, &mult, &shift);
    const auto x = static_cast<std::int32_t>(rng.randint(200000)) - 100000;
    const std::int32_t got = multiply_by_quantized_multiplier(x, mult, shift);
    const double want = x * m;
    EXPECT_NEAR(got, want, std::max(1.0, std::fabs(want) * 1e-5))
        << "m=" << m << " x=" << x;
  }
}

TEST(FixedPoint, RoundingDivideByPotRoundsTiesAwayFromZero) {
  // gemmlowp semantics: round to nearest, ties away from zero.
  EXPECT_EQ(rounding_divide_by_pot(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(rounding_divide_by_pot(-5, 1), -3);  // -2.5 -> -3
  EXPECT_EQ(rounding_divide_by_pot(4, 2), 1);
  EXPECT_EQ(rounding_divide_by_pot(7, 2), 2);
  EXPECT_EQ(rounding_divide_by_pot(-7, 2), -2);  // -1.75 -> -2
  EXPECT_EQ(rounding_divide_by_pot(-6, 2), -2);  // -1.5 -> -2
  EXPECT_EQ(rounding_divide_by_pot(100, 0), 100);
}

TEST(FakeQuant, MatchesManualGrid) {
  const QuantParams qp = choose_qparams(-1.0f, 1.0f);
  const Tensor x = random_tensor(Shape{100}, 4, -1.5f, 1.5f);
  const Tensor y = fake_quantize(x, qp);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y[i], qp.dequantize(qp.quantize(x[i])), 1e-6f);
  }
}

TEST(FakeQuant, IdempotentOnGridValues) {
  const QuantParams qp = choose_qparams(-1.0f, 1.0f);
  const Tensor x = random_tensor(Shape{64}, 5, -1.0f, 1.0f);
  const Tensor once = fake_quantize(x, qp);
  const Tensor twice = fake_quantize(once, qp);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(once[i], twice[i]);
}

TEST(ActFakeQuant, ObservesInTrainingAndFreezesInEval) {
  ActFakeQuant fq("fq");
  EXPECT_FALSE(fq.initialized());

  // Uninitialized eval mode: identity.
  const Tensor x = random_tensor(Shape{32}, 6, -2.0f, 2.0f);
  fq.set_training(false);
  const Tensor y0 = fq.forward(x);
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(y0[i], x[i]);

  fq.set_training(true);
  (void)fq.forward(x);
  EXPECT_TRUE(fq.initialized());
  EXPECT_NEAR(fq.observed_min(), min_value(x), 1e-6f);
  EXPECT_NEAR(fq.observed_max(), max_value(x), 1e-6f);

  // Eval mode applies the frozen grid.
  fq.set_training(false);
  const Tensor y = fq.forward(x);
  const QuantParams qp = fq.qparams();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y[i], qp.dequantize(qp.quantize(x[i])), 1e-6f);
  }
}

TEST(ActFakeQuant, EmaTracksShiftingRange) {
  ActFakeQuant fq("fq", /*ema_momentum=*/0.5f);
  fq.set_training(true);
  Tensor a(Shape{4}, 0.0f);
  a[0] = -1.0f;
  a[3] = 1.0f;
  (void)fq.forward(a);
  Tensor b(Shape{4}, 0.0f);
  b[0] = -3.0f;
  b[3] = 3.0f;
  (void)fq.forward(b);
  EXPECT_NEAR(fq.observed_min(), -2.0f, 1e-6f);  // -1 + 0.5*(-3 - -1)
  EXPECT_NEAR(fq.observed_max(), 2.0f, 1e-6f);
}

TEST(ActFakeQuant, SteBackwardMasksClippedRegions) {
  ActFakeQuant fq("fq");
  fq.set_range(-1.0f, 1.0f);
  fq.set_training(false);
  Tensor x(Shape{3});
  x[0] = -5.0f;  // clipped below
  x[1] = 0.3f;   // in range
  x[2] = 5.0f;   // clipped above
  (void)fq.forward(x);
  Tensor g(Shape{3}, 1.0f);
  const Tensor dx = fq.backward(g);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 1.0f);
  EXPECT_EQ(dx[2], 0.0f);
}

TEST(Int8Kernels, QDenseMatchesFloatReference) {
  Rng rng(7);
  const std::int64_t in_f = 32, out_f = 8;
  const Tensor x = random_tensor(Shape{in_f}, 8, -1.0f, 1.0f);
  Tensor w(Shape{out_f, in_f});
  w.fill_uniform(rng, -0.5f, 0.5f);
  Tensor bias(Shape{out_f});
  bias.fill_uniform(rng, -0.2f, 0.2f);

  const QuantParams in_qp = choose_qparams(-1.0f, 1.0f);
  const QuantParams out_qp = choose_qparams(-8.0f, 8.0f);
  const auto w_scales = per_channel_scales(w);
  const auto wq = quantize_per_channel(w, w_scales);
  const auto xq = quantize_tensor(x, in_qp);

  std::vector<std::int32_t> bq(static_cast<std::size_t>(out_f));
  for (std::int64_t o = 0; o < out_f; ++o) {
    bq[static_cast<std::size_t>(o)] = static_cast<std::int32_t>(std::lround(
        bias[o] / (in_qp.scale * w_scales[static_cast<std::size_t>(o)])));
  }
  const RequantChannel rq = make_requant(in_qp.scale, w_scales, out_qp.scale);
  std::vector<std::int8_t> out(static_cast<std::size_t>(out_f));
  qdense(xq.data(), in_f, in_qp.zero_point, wq.data(), out_f, bq.data(), rq,
         out_qp.zero_point, kQmin, kQmax, out.data());

  for (std::int64_t o = 0; o < out_f; ++o) {
    double ref = bias[o];
    for (std::int64_t i = 0; i < in_f; ++i) ref += w.at(o, i) * x[i];
    const float got = out_qp.dequantize(out[static_cast<std::size_t>(o)]);
    // Error budget: input rounding (in_qp.scale/2 per element, ~sqrt(n)
    // accumulation), weight rounding, output rounding.
    EXPECT_NEAR(got, ref, 0.15) << "unit " << o;
  }
}

TEST(Int8Kernels, QConvMatchesFloatReferenceWithPadding) {
  Rng rng(9);
  ConvGeom g{3, 8, 8, 3, 3, 1, 1};
  const std::int64_t out_c = 4;
  const Tensor x = random_tensor(Shape{3, 8, 8}, 10, 0.0f, 1.0f);
  Tensor w(Shape{out_c, 3, 3, 3});
  w.fill_uniform(rng, -0.4f, 0.4f);
  Tensor bias(Shape{out_c});
  bias.fill_uniform(rng, -0.3f, 0.3f);

  const QuantParams in_qp = choose_qparams(0.0f, 1.0f);
  const QuantParams out_qp = choose_qparams(-4.0f, 4.0f);
  const auto w_scales = per_channel_scales(w);
  const auto wq = quantize_per_channel(w, w_scales);
  const auto xq = quantize_tensor(x, in_qp);
  std::vector<std::int32_t> bq(static_cast<std::size_t>(out_c));
  for (std::int64_t c = 0; c < out_c; ++c) {
    bq[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(std::lround(
        bias[c] / (in_qp.scale * w_scales[static_cast<std::size_t>(c)])));
  }
  const RequantChannel rq = make_requant(in_qp.scale, w_scales, out_qp.scale);
  std::vector<std::int8_t> out(static_cast<std::size_t>(out_c * 64));
  qconv2d(xq.data(), g, in_qp.zero_point, wq.data(), out_c, bq.data(), rq,
          out_qp.zero_point, kQmin, kQmax, out.data());

  // Float reference conv.
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    for (std::int64_t y = 0; y < 8; y += 3) {
      for (std::int64_t xo = 0; xo < 8; xo += 3) {
        double ref = bias[oc];
        for (std::int64_t c = 0; c < 3; ++c) {
          for (std::int64_t kh = 0; kh < 3; ++kh) {
            for (std::int64_t kw = 0; kw < 3; ++kw) {
              const std::int64_t iy = y - 1 + kh, ix = xo - 1 + kw;
              if (iy < 0 || iy >= 8 || ix < 0 || ix >= 8) continue;
              ref += w.at(oc, c, kh, kw) * x[(c * 8 + iy) * 8 + ix];
            }
          }
        }
        const float got = out_qp.dequantize(
            out[static_cast<std::size_t>((oc * 8 + y) * 8 + xo)]);
        EXPECT_NEAR(got, ref, 0.12)
            << "oc=" << oc << " y=" << y << " x=" << xo;
      }
    }
  }
}

TEST(Int8Kernels, FusedReluClampsNegativeOutputs) {
  // One 1x1 conv unit with a strongly negative weight: with the fused
  // relu bound (act_min = zero_point) outputs must dequantize to >= 0.
  ConvGeom g{1, 2, 2, 1, 1, 1, 0};
  const QuantParams in_qp = choose_qparams(0.0f, 1.0f);
  const QuantParams out_qp = choose_qparams(0.0f, 2.0f);
  const float wf = -1.5f;
  const std::vector<float> ws{1.5f / 127.0f};
  const std::vector<std::int8_t> wq{static_cast<std::int8_t>(-127)};
  (void)wf;
  const RequantChannel rq = make_requant(in_qp.scale, ws, out_qp.scale);
  std::vector<std::int8_t> in{in_qp.quantize(0.9f), in_qp.quantize(0.1f),
                              in_qp.quantize(0.5f), in_qp.quantize(0.0f)};
  std::vector<std::int8_t> out(4);
  qconv2d(in.data(), g, in_qp.zero_point, wq.data(), 1, nullptr, rq,
          out_qp.zero_point, out_qp.zero_point, kQmax, out.data());
  for (const std::int8_t q : out) {
    EXPECT_GE(out_qp.dequantize(q), 0.0f);
  }
}

TEST(Int8Kernels, QAddMatchesFloatReference) {
  const QuantParams qp_a = choose_qparams(-1.0f, 1.0f);
  const QuantParams qp_b = choose_qparams(-2.0f, 2.0f);
  const QuantParams qp_o = choose_qparams(-3.0f, 3.0f);
  Rng rng(11);
  std::vector<std::int8_t> a(64), b(64), out(64);
  std::vector<float> fa(64), fb(64);
  for (int i = 0; i < 64; ++i) {
    fa[static_cast<std::size_t>(i)] = rng.uniform(-1.0f, 1.0f);
    fb[static_cast<std::size_t>(i)] = rng.uniform(-2.0f, 2.0f);
    a[static_cast<std::size_t>(i)] = qp_a.quantize(fa[static_cast<std::size_t>(i)]);
    b[static_cast<std::size_t>(i)] = qp_b.quantize(fb[static_cast<std::size_t>(i)]);
  }
  qadd(a, qp_a, b, qp_b, qp_o, kQmin, kQmax, out);
  for (int i = 0; i < 64; ++i) {
    const float ref = qp_a.dequantize(a[static_cast<std::size_t>(i)]) +
                      qp_b.dequantize(b[static_cast<std::size_t>(i)]);
    EXPECT_NEAR(qp_o.dequantize(out[static_cast<std::size_t>(i)]), ref,
                qp_o.scale * 1.01f);
  }
}

TEST(Int8Kernels, RequantizeRoundTripWithinOneStep) {
  const QuantParams qp_in = choose_qparams(-1.0f, 1.0f);
  const QuantParams qp_out = choose_qparams(-1.3f, 0.9f);
  std::vector<std::int8_t> in(256), out(256);
  for (int i = 0; i < 256; ++i) {
    in[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(i - 128);
  }
  qrequantize(in, qp_in, qp_out, out);
  for (int i = 0; i < 256; ++i) {
    const float x = qp_in.dequantize(in[static_cast<std::size_t>(i)]);
    const float y = qp_out.dequantize(out[static_cast<std::size_t>(i)]);
    if (x >= -1.3f && x <= 0.9f) {
      EXPECT_NEAR(y, x, qp_out.scale * 0.75f);
    }
  }
}

TEST(Int8Kernels, QMaxPoolEqualsFloatMaxPool) {
  const QuantParams qp = choose_qparams(-1.0f, 1.0f);
  const Tensor x = random_tensor(Shape{2, 4, 4}, 12, -1.0f, 1.0f);
  const auto xq = quantize_tensor(x, qp);
  ConvGeom g{2, 4, 4, 2, 2, 2, 0};
  std::vector<std::int8_t> out(static_cast<std::size_t>(2 * 4));
  qmaxpool2d(xq.data(), g, out.data());
  for (std::int64_t c = 0; c < 2; ++c) {
    for (std::int64_t y = 0; y < 2; ++y) {
      for (std::int64_t xo = 0; xo < 2; ++xo) {
        std::int8_t want = kQmin;
        for (int kh = 0; kh < 2; ++kh) {
          for (int kw = 0; kw < 2; ++kw) {
            want = std::max(
                want, xq[static_cast<std::size_t>(
                          (c * 4 + y * 2 + kh) * 4 + xo * 2 + kw)]);
          }
        }
        EXPECT_EQ(out[static_cast<std::size_t>((c * 2 + y) * 2 + xo)], want);
      }
    }
  }
}

TEST(Int8Kernels, QGlobalAvgPoolMatchesMean) {
  const QuantParams qp = choose_qparams(0.0f, 1.0f);
  const Tensor x = random_tensor(Shape{3, 5, 5}, 13, 0.0f, 1.0f);
  const auto xq = quantize_tensor(x, qp);
  std::vector<std::int8_t> out(3);
  qglobal_avgpool(xq.data(), 3, 25, out.data());
  for (std::int64_t c = 0; c < 3; ++c) {
    double m = 0;
    for (int i = 0; i < 25; ++i) {
      m += qp.dequantize(xq[static_cast<std::size_t>(c * 25 + i)]);
    }
    m /= 25;
    EXPECT_NEAR(qp.dequantize(out[static_cast<std::size_t>(c)]), m,
                qp.scale * 0.75);
  }
}

TEST(QatLayers, FakeQuantWeightsCloseToMasters) {
  QatConv2d conv("qc", 3, 8, 3, 1, 1);
  init_parameters(conv, 14);
  conv.set_training(false);
  const Tensor x = random_tensor(Shape{1, 3, 6, 6}, 15);
  (void)conv.forward(x);
  // Forward ran with fake-quantized weights; verify the quantization
  // error of each weight is within half a per-channel step.
  const auto scales = conv.weight_scales();
  const Tensor fq = fake_quantize_per_channel(conv.weight().value, scales);
  const std::int64_t per = conv.weight().value.numel() / 8;
  for (std::int64_t c = 0; c < 8; ++c) {
    for (std::int64_t i = 0; i < per; ++i) {
      EXPECT_LE(std::fabs(fq[c * per + i] - conv.weight().value[c * per + i]),
                scales[static_cast<std::size_t>(c)] * 0.5f + 1e-7f);
    }
  }
}

TEST(QatLayers, PerTensorAblationUsesSingleScale) {
  QatConv2d conv("qc", 2, 4, 3, 1, 1);
  init_parameters(conv, 16);
  conv.set_per_tensor(true);
  const auto scales = conv.effective_scales();
  for (std::size_t c = 1; c < scales.size(); ++c) {
    EXPECT_EQ(scales[c], scales[0]);
  }
  EXPECT_NEAR(scales[0], max_abs(conv.weight().value) / 127.0f, 1e-7f);
}

TEST(QatLayers, QatDensePerColumnScales) {
  QatDense fc("qfc", 6, 3);
  init_parameters(fc, 17);
  const auto scales = fc.weight_scales();
  ASSERT_EQ(scales.size(), 3u);
  for (std::int64_t o = 0; o < 3; ++o) {
    float m = 0.0f;
    for (std::int64_t i = 0; i < 6; ++i) {
      m = std::max(m, std::fabs(fc.weight().value.at(i, o)));
    }
    EXPECT_NEAR(scales[static_cast<std::size_t>(o)], m / 127.0f, 1e-7f);
  }
}

}  // namespace
}  // namespace diva
