// QuantizedModel compiler/executor tests: graph structure per
// architecture, batch consistency, artifact serialization round-trip,
// and error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "models/factory.h"
#include "nn/init.h"
#include "quant/qat.h"
#include "quant/qmodel_io.h"
#include "tensor/serialize.h"
#include "quant/quantized_model.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

/// Calibrated QAT model of the given arch with random weights.
std::unique_ptr<Sequential> calibrated_qat(Arch arch, std::uint64_t seed) {
  auto qat = make_model(arch, 8, NetMode::kQat);
  init_parameters(*qat, seed);
  calibrate(*qat, {random_tensor(Shape{8, 3, 32, 32}, seed + 1, 0.0f, 1.0f)});
  return qat;
}

bool has_op(const QuantizedModel& m, QOp::Kind kind) {
  for (const QOp& op : m.ops()) {
    if (op.kind == kind) return true;
  }
  return false;
}

TEST(QuantizedModel, ResNetGraphContainsAddOps) {
  auto qat = calibrated_qat(Arch::kResNet, 1);
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{3, 32, 32});
  EXPECT_TRUE(has_op(m, QOp::Kind::kConv));
  EXPECT_TRUE(has_op(m, QOp::Kind::kAdd)) << "residual adds missing";
  EXPECT_TRUE(has_op(m, QOp::Kind::kGlobalAvgPool));
  EXPECT_TRUE(has_op(m, QOp::Kind::kDense));
  EXPECT_FALSE(has_op(m, QOp::Kind::kDepthwiseConv));
}

TEST(QuantizedModel, MobileNetGraphContainsDepthwiseOps) {
  auto qat = calibrated_qat(Arch::kMobileNet, 2);
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{3, 32, 32});
  EXPECT_TRUE(has_op(m, QOp::Kind::kDepthwiseConv));
  EXPECT_FALSE(has_op(m, QOp::Kind::kAdd));
  EXPECT_FALSE(has_op(m, QOp::Kind::kConcat));
}

TEST(QuantizedModel, DenseNetGraphContainsConcatOps) {
  auto qat = calibrated_qat(Arch::kDenseNet, 3);
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{3, 32, 32});
  EXPECT_TRUE(has_op(m, QOp::Kind::kConcat));
  EXPECT_TRUE(has_op(m, QOp::Kind::kAvgPool));
}

TEST(QuantizedModel, EdgeResidualGraphLowersLutAddAndAvgPool) {
  auto qat = make_edge_residual_net(10, NetMode::kQat);
  init_parameters(*qat, 20);
  calibrate(*qat, {random_tensor(Shape{6, 1, 28, 28}, 21, 0.0f, 1.0f)});
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{1, 28, 28});

  // The fixture exists to exercise the extended op catalog end to end.
  EXPECT_TRUE(has_op(m, QOp::Kind::kLut)) << "LUT activations missing";
  EXPECT_TRUE(has_op(m, QOp::Kind::kAvgPool));
  EXPECT_TRUE(has_op(m, QOp::Kind::kAdd)) << "residual add missing";
  EXPECT_TRUE(has_op(m, QOp::Kind::kDepthwiseConv));

  // Three LUT activation kinds in the graph (stem hard-sigmoid, two
  // leaky-relus, head sigmoid), each carrying a complete 256-entry
  // table in its weights payload.
  int luts = 0;
  for (const QOp& op : m.ops()) {
    if (op.kind != QOp::Kind::kLut) continue;
    ++luts;
    EXPECT_EQ(op.weights.size(), 256u);
  }
  EXPECT_GE(luts, 4);

  // The executor runs it: batch forward consistent with per-image int8.
  const Tensor x = random_tensor(Shape{3, 1, 28, 28}, 22, 0.0f, 1.0f);
  const Tensor logits = m.forward(x);
  ASSERT_EQ(logits.dim(0), 3);
  ASSERT_EQ(logits.dim(1), 10);
  const QuantParams out_qp = m.output_slot().qp;
  for (std::int64_t i = 0; i < 3; ++i) {
    const auto q = m.forward_single_int8(x.raw() + i * 28 * 28);
    for (std::int64_t j = 0; j < 10; ++j) {
      EXPECT_EQ(logits.at(i, j),
                out_qp.dequantize(q[static_cast<std::size_t>(j)]));
    }
  }
}

TEST(QuantizedModelIo, EdgeResidualLutGraphRoundTripsBitIdentical) {
  // kLut was appended to the serialized op-kind enum; the artifact
  // format must carry its table and replay bit-identically.
  auto qat = make_edge_residual_net(10, NetMode::kQat);
  init_parameters(*qat, 23);
  calibrate(*qat, {random_tensor(Shape{6, 1, 28, 28}, 24, 0.0f, 1.0f)});
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{1, 28, 28});

  std::stringstream ss;
  save_quantized_model(m, ss);
  const QuantizedModel loaded = load_quantized_model(ss);
  EXPECT_EQ(loaded.num_ops(), m.num_ops());

  const Tensor x = random_tensor(Shape{4, 1, 28, 28}, 25, 0.0f, 1.0f);
  EXPECT_EQ(max_abs(sub(m.forward(x), loaded.forward(x))), 0.0f);
}

TEST(QuantizedModel, EveryOpReferencesValidSlots) {
  auto qat = calibrated_qat(Arch::kResNet, 4);
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{3, 32, 32});
  const int n = static_cast<int>(m.num_slots());
  for (const QOp& op : m.ops()) {
    EXPECT_GE(op.in0, 0);
    EXPECT_LT(op.in0, n);
    EXPECT_GE(op.out, 0);
    EXPECT_LT(op.out, n);
    if (op.kind == QOp::Kind::kAdd || op.kind == QOp::Kind::kConcat) {
      EXPECT_GE(op.in1, 0);
      EXPECT_LT(op.in1, n);
    }
  }
}

TEST(QuantizedModel, BatchForwardMatchesSingleImageForward) {
  auto qat = calibrated_qat(Arch::kMobileNet, 5);
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{3, 32, 32});
  const Tensor x = random_tensor(Shape{4, 3, 32, 32}, 6, 0.0f, 1.0f);
  const Tensor batch_logits = m.forward(x);
  const QuantParams out_qp = m.output_slot().qp;
  for (std::int64_t i = 0; i < 4; ++i) {
    const auto q = m.forward_single_int8(x.raw() + i * 3 * 32 * 32);
    for (std::int64_t j = 0; j < batch_logits.dim(1); ++j) {
      EXPECT_EQ(batch_logits.at(i, j),
                out_qp.dequantize(q[static_cast<std::size_t>(j)]));
    }
  }
}

TEST(QuantizedModel, ForwardIsDeterministic) {
  auto qat = calibrated_qat(Arch::kDenseNet, 7);
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{3, 32, 32});
  const Tensor x = random_tensor(Shape{2, 3, 32, 32}, 8, 0.0f, 1.0f);
  const Tensor a = m.forward(x);
  const Tensor b = m.forward(x);
  EXPECT_EQ(max_abs(sub(a, b)), 0.0f);
}

TEST(QuantizedModel, CompileRejectsUncalibratedModel) {
  auto qat = make_model(Arch::kResNet, 8, NetMode::kQat);
  init_parameters(*qat, 9);
  EXPECT_THROW(QuantizedModel::compile(*qat, Shape{3, 32, 32}), Error);
}

TEST(QuantizedModel, CompileRejectsFloatModel) {
  auto fl = make_model(Arch::kResNet, 8, NetMode::kFloat);
  init_parameters(*fl, 10);
  EXPECT_THROW(QuantizedModel::compile(*fl, Shape{3, 32, 32}), Error);
}

TEST(QuantizedModelIo, RoundTripIsBitIdentical) {
  auto qat = calibrated_qat(Arch::kResNet, 11);
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{3, 32, 32});

  std::stringstream ss;
  save_quantized_model(m, ss);
  const QuantizedModel loaded = load_quantized_model(ss);

  EXPECT_EQ(loaded.num_ops(), m.num_ops());
  EXPECT_EQ(loaded.num_slots(), m.num_slots());
  EXPECT_EQ(loaded.input_qparams(), m.input_qparams());

  const Tensor x = random_tensor(Shape{3, 3, 32, 32}, 12, 0.0f, 1.0f);
  const Tensor a = m.forward(x);
  const Tensor b = loaded.forward(x);
  EXPECT_EQ(max_abs(sub(a, b)), 0.0f)
      << "deployed artifact must run bit-identically";
}

TEST(QuantizedModelIo, FileRoundTripAndWeightBytes) {
  auto qat = calibrated_qat(Arch::kMobileNet, 13);
  const QuantizedModel m = QuantizedModel::compile(*qat, Shape{3, 32, 32});
  const std::string path = ::testing::TempDir() + "/model.dq8";
  save_quantized_model_file(m, path);
  const QuantizedModel loaded = load_quantized_model_file(path);
  EXPECT_EQ(loaded.weight_bytes(), m.weight_bytes());
  // The int8 artifact is small: weights are 1 byte each.
  EXPECT_LT(m.weight_bytes(), 200000);
}

TEST(QuantizedModelIo, RejectsCorruptStream) {
  std::stringstream ss;
  write_i64(ss, 12345);  // wrong magic
  EXPECT_THROW(load_quantized_model(ss), Error);
}

TEST(QuantizedModel, FromPartsValidatesIndices) {
  std::vector<QSlot> slots(1);
  slots[0].shape = Shape{4};
  std::vector<QOp> ops(1);
  ops[0].in0 = 0;
  ops[0].out = 5;  // out of range
  EXPECT_THROW(
      QuantizedModel::from_parts(std::move(slots), std::move(ops), 0, 0),
      Error);
}

}  // namespace
}  // namespace diva
