// Tensor, Shape, and tensor-op unit tests.
#include <gtest/gtest.h>

#include "tensor/serialize.h"
#include "tensor/tensor_ops.h"
#include "test_helpers.h"

#include <sstream>

namespace diva {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s.str(), "[2, 3, 4]");
  EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(Shape, EqualityAndValidation) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_THROW(Shape({-1, 2}), Error);
  EXPECT_THROW((void)Shape({2, 2})[5], Error);
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 1.5f);
  t.fill(0.0f);
  EXPECT_EQ(sum(t), 0.0f);
}

TEST(Tensor, AccessorsMatchRowMajorLayout) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  Tensor u(Shape{2, 2, 2, 2});
  u.at(1, 0, 1, 0) = 3.0f;
  EXPECT_EQ(u[8 + 2], 3.0f);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t(Shape{2, 3});
  for (std::int64_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.at(2, 1), 5.0f);
  EXPECT_THROW((void)t.reshaped(Shape{4, 2}), Error);
}

TEST(TensorOps, ElementwiseMath) {
  Tensor a(Shape{4}, 2.0f), b(Shape{4}, 3.0f);
  EXPECT_EQ(add(a, b)[0], 5.0f);
  EXPECT_EQ(sub(a, b)[0], -1.0f);
  EXPECT_EQ(mul(a, b)[0], 6.0f);
  EXPECT_EQ(add_scalar(a, 1.0f)[0], 3.0f);
  EXPECT_EQ(mul_scalar(a, -2.0f)[0], -4.0f);
  EXPECT_THROW(add(a, Tensor(Shape{3})), Error);
}

TEST(TensorOps, AxpyAndClampSign) {
  Tensor x(Shape{3});
  x[0] = -2.0f; x[1] = 0.0f; x[2] = 5.0f;
  Tensor y(Shape{3}, 1.0f);
  axpy(2.0f, x, y);
  EXPECT_EQ(y[0], -3.0f);
  EXPECT_EQ(y[2], 11.0f);
  Tensor c = clamp(x, -1.0f, 1.0f);
  EXPECT_EQ(c[0], -1.0f);
  EXPECT_EQ(c[2], 1.0f);
  Tensor s = sign(x);
  EXPECT_EQ(s[0], -1.0f);
  EXPECT_EQ(s[1], 0.0f);
  EXPECT_EQ(s[2], 1.0f);
}

TEST(TensorOps, MatmulAgainstHandComputed) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{3, 2});
  for (std::int64_t i = 0; i < 6; ++i) {
    a[i] = static_cast<float>(i + 1);      // [[1,2,3],[4,5,6]]
    b[i] = static_cast<float>((i + 1) * 2); // [[2,4],[6,8],[10,12]]
  }
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 1 * 2 + 2 * 6 + 3 * 10);
  EXPECT_EQ(c.at(0, 1), 1 * 4 + 2 * 8 + 3 * 12);
  EXPECT_EQ(c.at(1, 0), 4 * 2 + 5 * 6 + 6 * 10);
  EXPECT_EQ(c.at(1, 1), 4 * 4 + 5 * 8 + 6 * 12);
}

TEST(TensorOps, MatmulLargeParallelMatchesSerialReference) {
  const Tensor a = testing::random_tensor(Shape{67, 129}, 1);
  const Tensor b = testing::random_tensor(Shape{129, 83}, 2);
  const Tensor c = matmul(a, b);
  // Serial reference.
  for (std::int64_t i = 0; i < 67; i += 13) {
    for (std::int64_t j = 0; j < 83; j += 17) {
      double acc = 0;
      for (std::int64_t k = 0; k < 129; ++k) acc += a.at(i, k) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-3);
    }
  }
}

TEST(TensorOps, TransposeRoundTrip) {
  const Tensor a = testing::random_tensor(Shape{5, 7}, 3);
  const Tensor att = transpose2d(transpose2d(a));
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], att[i]);
}

TEST(TensorOps, Im2ColIdentityKernel) {
  // 1x1 kernel, stride 1, no pad: im2col is the identity layout.
  const Tensor img = testing::random_tensor(Shape{2, 4, 4}, 4);
  ConvGeom g{2, 4, 4, 1, 1, 1, 0};
  std::vector<float> cols(static_cast<std::size_t>(2 * 16));
  im2col(img.raw(), g, cols.data());
  for (std::int64_t i = 0; i < 32; ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(TensorOps, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
  ConvGeom g{2, 5, 5, 3, 3, 2, 1};
  const std::int64_t cols_size = 2 * 9 * g.out_h() * g.out_w();
  const Tensor x = testing::random_tensor(Shape{2, 5, 5}, 5);
  const Tensor y = testing::random_tensor(Shape{cols_size}, 6);

  std::vector<float> cols(static_cast<std::size_t>(cols_size));
  im2col(x.raw(), g, cols.data());
  double lhs = 0;
  for (std::int64_t i = 0; i < cols_size; ++i) lhs += cols[i] * y[i];

  Tensor xt(Shape{2, 5, 5});
  col2im(y.raw(), g, xt.raw());
  double rhs = 0;
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * xt[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(TensorOps, SoftmaxRowsSumToOneAndOrderPreserved) {
  const Tensor logits = testing::random_tensor(Shape{5, 9}, 7, -4.0f, 4.0f);
  const Tensor p = softmax_rows(logits);
  for (std::int64_t i = 0; i < 5; ++i) {
    double s = 0;
    for (std::int64_t j = 0; j < 9; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      s += p.at(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
  EXPECT_EQ(argmax_rows(p), argmax_rows(logits));
}

TEST(TensorOps, SoftmaxNumericallyStableForHugeLogits) {
  Tensor logits(Shape{1, 3});
  logits[0] = 10000.0f;
  logits[1] = 9999.0f;
  logits[2] = -10000.0f;
  const Tensor p = softmax_rows(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-5f);
  EXPECT_GT(p[0], p[1]);
}

TEST(TensorOps, LogSoftmaxMatchesLogOfSoftmax) {
  const Tensor logits = testing::random_tensor(Shape{3, 6}, 8, -2.0f, 2.0f);
  const Tensor lp = log_softmax_rows(logits);
  const Tensor p = softmax_rows(logits);
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-5f);
  }
}

TEST(TensorOps, TopkRowsDescendingAndConsistentWithArgmax) {
  const Tensor m = testing::random_tensor(Shape{4, 10}, 9);
  const auto topk = topk_rows(m, 5);
  const auto top1 = argmax_rows(m);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(topk[static_cast<std::size_t>(i)][0], top1[static_cast<std::size_t>(i)]);
    for (int k = 1; k < 5; ++k) {
      EXPECT_GE(m.at(i, topk[static_cast<std::size_t>(i)][k - 1]),
                m.at(i, topk[static_cast<std::size_t>(i)][k]));
    }
  }
  EXPECT_THROW(topk_rows(m, 11), Error);
}

TEST(TensorOps, Reductions) {
  Tensor t(Shape{4});
  t[0] = -3.0f; t[1] = 1.0f; t[2] = 2.0f; t[3] = 0.0f;
  EXPECT_EQ(sum(t), 0.0f);
  EXPECT_EQ(mean(t), 0.0f);
  EXPECT_EQ(max_value(t), 2.0f);
  EXPECT_EQ(min_value(t), -3.0f);
  EXPECT_EQ(max_abs(t), 3.0f);
}

TEST(TensorOps, BatchSliceGatherConcat) {
  const Tensor batch = testing::random_tensor(Shape{3, 2, 2, 2}, 10);
  const Tensor s1 = slice_batch(batch, 1);
  EXPECT_EQ(s1.shape(), (Shape{1, 2, 2, 2}));
  EXPECT_EQ(s1[0], batch[8]);

  const Tensor g = gather_batch(batch, {2, 0});
  EXPECT_EQ(g.dim(0), 2);
  EXPECT_EQ(g[0], batch[16]);

  const Tensor a = testing::random_tensor(Shape{2, 3, 2, 2}, 11);
  const Tensor b = testing::random_tensor(Shape{2, 1, 2, 2}, 12);
  const Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 4, 2, 2}));
  EXPECT_EQ(c.at(1, 3, 1, 1), b.at(1, 0, 1, 1));
  EXPECT_EQ(c.at(1, 0, 0, 0), a.at(1, 0, 0, 0));
}

TEST(Serialize, TensorRoundTrip) {
  const Tensor t = testing::random_tensor(Shape{2, 3, 4}, 13);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor r = read_tensor(ss);
  ASSERT_EQ(r.shape(), t.shape());
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(r[i], t[i]);
}

TEST(Serialize, StringAndScalars) {
  std::stringstream ss;
  write_string(ss, "hello");
  write_i64(ss, -42);
  write_f32(ss, 2.5f);
  EXPECT_EQ(read_string(ss), "hello");
  EXPECT_EQ(read_i64(ss), -42);
  EXPECT_EQ(read_f32(ss), 2.5f);
}

TEST(Rng, DeterministicAndSplit) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c = a.split(1), d = a.split(2);
  EXPECT_NE(c.next(), d.next());
}

TEST(Rng, UniformBoundsAndNormalMoments) {
  Rng rng(7);
  double s = 0, s2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float u = rng.uniform(2.0f, 3.0f);
    EXPECT_GE(u, 2.0f);
    EXPECT_LT(u, 3.0f);
    const float g = rng.normal();
    s += g;
    s2 += g * g;
  }
  EXPECT_NEAR(s / n, 0.0, 0.05);
  EXPECT_NEAR(s2 / n, 1.0, 0.05);
}

TEST(Rng, RandintInRangeAndRoughlyUniform) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.randint(10);
    ASSERT_LT(v, 10u);
    counts[static_cast<std::size_t>(v)]++;
  }
  for (int c : counts) EXPECT_GT(c, 700);
}

}  // namespace
}  // namespace diva
